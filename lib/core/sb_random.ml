(** Deterministic, splittable pseudo-random generator (SplitMix64).

    Each benchmark thread owns one generator split off a master seed, so
    runs are reproducible for a given seed and thread count without any
    synchronization on the generator state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  (* sb7-lint: allow raw-mut -- generator state is thread-private by
     construction (one generator per benchmark thread, split off the
     master seed); advancing it on an aborted attempt is harmless. *)
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create ~seed = { state = Int64.of_int seed }

(** A generator statistically independent of [t] (SplitMix split). *)
let split t = { state = next_int64 t }

let copy t = { state = t.state }

(** Uniform integer in [0, bound); [bound] must be positive. *)
let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

(** Uniform integer in [lo, hi] inclusive. *)
let in_range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** True with probability [percent]/100. *)
let percent t percent = int t 100 < percent

(** A random element of a non-empty list. *)
let element t = function
  | [] -> invalid_arg "Sb_random.element: empty list"
  | l -> List.nth l (int t (List.length l))
