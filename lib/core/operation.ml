(** Registry of all 45 STMBench7 operations with their category and
    lock-domain profile (used by the medium-grained strategy). *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module S = Setup.Make (R)
  module LT = Traversals.Make (R)
  module ST = Short_traversals.Make (R)
  module OP = Short_ops.Make (R)
  module SM = Structure_mods.Make (R)

  module P = Sb7_runtime.Op_profile

  type t = {
    code : string;
    category : Category.t;
    profile : P.t;
    run : Sb_random.t -> S.t -> int;
  }

  let read_only t = P.read_only t.profile

  let levels = P.all_assembly_levels
  let upper_levels = P.assembly_levels 2 P.max_assembly_levels
  let level1 = [ P.Assembly_level 1 ]

  (* The read-only dispatch hint comes from the generated footprint
     table (lib/core/op_footprint.ml), not the hand-written ~writes
     declarations: the declarations keep feeding the medium runtime's
     locking plans, but which operations take the zero-log / snapshot
     path is decided by the sb7-footprint analysis, with lint R4 and
     the sb7-sanitize footprint replay policing the generator. *)
  let profile ~name ?reads ?writes ?structural () =
    P.make ~name ?reads ?writes ?structural ?ro:(Op_footprint.ro_hint name) ()

  let long_traversal code ?reads ?writes run =
    { code; category = Category.Long_traversal;
      profile = profile ~name:code ?reads ?writes (); run }

  let short_traversal code ?reads ?writes run =
    { code; category = Category.Short_traversal;
      profile = profile ~name:code ?reads ?writes (); run }

  let short_operation code ?reads ?writes run =
    { code; category = Category.Short_operation;
      profile = profile ~name:code ?reads ?writes (); run }

  let structure_mod code run =
    { code; category = Category.Structure_modification;
      profile = profile ~name:code ~structural:true (); run }

  (* Domain shorthands for the deep traversals. *)
  let deep_ro = levels @ [ P.Composite_parts; P.Atomic_parts ]
  let deep_doc = levels @ [ P.Composite_parts; P.Documents ]

  let all : t list =
    [
      (* Long traversals. *)
      long_traversal "T1" ~reads:deep_ro LT.t1;
      long_traversal "T2a" ~reads:deep_ro ~writes:[ P.Atomic_parts ] LT.t2a;
      long_traversal "T2b" ~reads:deep_ro ~writes:[ P.Atomic_parts ] LT.t2b;
      long_traversal "T2c" ~reads:deep_ro ~writes:[ P.Atomic_parts ] LT.t2c;
      long_traversal "T3a" ~reads:deep_ro ~writes:[ P.Atomic_parts ] LT.t3a;
      long_traversal "T3b" ~reads:deep_ro ~writes:[ P.Atomic_parts ] LT.t3b;
      long_traversal "T3c" ~reads:deep_ro ~writes:[ P.Atomic_parts ] LT.t3c;
      long_traversal "T4" ~reads:deep_doc LT.t4;
      long_traversal "T5" ~reads:(levels @ [ P.Composite_parts ])
        ~writes:[ P.Documents ] LT.t5;
      long_traversal "T6" ~reads:deep_ro LT.t6;
      long_traversal "Q6" ~reads:(levels @ [ P.Composite_parts ]) LT.q6;
      long_traversal "Q7" ~reads:[ P.Atomic_parts ] LT.q7;
      (* Short traversals. *)
      short_traversal "ST1" ~reads:deep_ro ST.st1;
      short_traversal "ST2" ~reads:deep_doc ST.st2;
      short_traversal "ST3"
        ~reads:(levels @ [ P.Composite_parts; P.Atomic_parts ])
        ST.st3;
      short_traversal "ST4"
        ~reads:(level1 @ [ P.Composite_parts; P.Documents ])
        ST.st4;
      short_traversal "ST5" ~reads:(level1 @ [ P.Composite_parts ]) ST.st5;
      short_traversal "ST6" ~reads:(levels @ [ P.Composite_parts ])
        ~writes:[ P.Atomic_parts ] ST.st6;
      short_traversal "ST7" ~reads:(levels @ [ P.Composite_parts ])
        ~writes:[ P.Documents ] ST.st7;
      short_traversal "ST8"
        ~reads:(level1 @ [ P.Composite_parts; P.Atomic_parts ])
        ~writes:upper_levels ST.st8;
      short_traversal "ST9" ~reads:deep_ro ST.st9;
      short_traversal "ST10" ~reads:(levels @ [ P.Composite_parts ])
        ~writes:[ P.Atomic_parts ] ST.st10;
      (* Short operations. *)
      short_operation "OP1" ~reads:[ P.Atomic_parts ] OP.op1;
      short_operation "OP2" ~reads:[ P.Atomic_parts ] OP.op2;
      short_operation "OP3" ~reads:[ P.Atomic_parts ] OP.op3;
      short_operation "OP4" ~reads:[ P.Manual ] OP.op4;
      short_operation "OP5" ~reads:[ P.Manual ] OP.op5;
      short_operation "OP6" ~reads:upper_levels OP.op6;
      short_operation "OP7" ~reads:(level1 @ [ P.Assembly_level 2 ]) OP.op7;
      short_operation "OP8" ~reads:(level1 @ [ P.Composite_parts ]) OP.op8;
      short_operation "OP9" ~writes:[ P.Atomic_parts ] OP.op9;
      short_operation "OP10" ~writes:[ P.Atomic_parts ] OP.op10;
      short_operation "OP11" ~writes:[ P.Manual ] OP.op11;
      short_operation "OP12" ~writes:upper_levels OP.op12;
      short_operation "OP13" ~reads:[ P.Assembly_level 2 ] ~writes:level1
        OP.op13;
      short_operation "OP14" ~reads:level1 ~writes:[ P.Composite_parts ]
        OP.op14;
      short_operation "OP15" ~writes:[ P.Atomic_parts ] OP.op15;
      (* Structure modifications. *)
      structure_mod "SM1" SM.sm1;
      structure_mod "SM2" SM.sm2;
      structure_mod "SM3" SM.sm3;
      structure_mod "SM4" SM.sm4;
      structure_mod "SM5" SM.sm5;
      structure_mod "SM6" SM.sm6;
      structure_mod "SM7" SM.sm7;
      structure_mod "SM8" SM.sm8;
    ]

  (* [by_code] is on the operation-pick path of every worker loop (and
     called per --only-op / CLI parse), so the linear scan of [all] is
     memoized into a hash table, built lazily on first lookup. *)
  let by_code_table =
    lazy
      (let tbl = Hashtbl.create (2 * List.length all) in
       List.iter (fun op -> Hashtbl.replace tbl op.code op) all;
       tbl)

  let by_code code = Hashtbl.find_opt (Lazy.force by_code_table) code

  (** The Figure 6 "reduced benchmark" of the paper's §5: every
      operation that acquires very many objects in read mode, or
      modifies the manual, is disabled — what remains "resembles
      applications based on short queries over a partially static,
      tree-based data structure". Long traversals are excluded
      separately (they are off in that experiment anyway). *)
  let reduced_excluded = [ "ST5"; "OP4"; "OP5"; "OP11"; "Q7"; "OP3" ]

  let in_reduced_set op =
    not (List.mem op.code reduced_excluded)
end
