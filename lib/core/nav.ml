(** Shared traversal helpers over the object graph. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module S = Setup.Make (R)

  (** Depth-first search over a composite part's atomic-part graph,
      following outgoing connections from the root part; [f] is applied
      to each part exactly once. Returns the number of parts visited
      (always the whole graph: construction guarantees connectivity). *)
  let dfs_atomic_graph (root : T.atomic_part) f =
    let visited = Hashtbl.create 64 in
    let rec go (part : T.atomic_part) =
      if not (Hashtbl.mem visited part.T.ap_id) then begin
        Hashtbl.add visited part.T.ap_id ();
        f part;
        List.iter (fun (c : T.connection) -> go c.T.conn_to) (R.read part.T.ap_to)
      end
    in
    go root;
    Hashtbl.length visited

  (** Depth-first walk of the assembly tree from [root]. *)
  let rec iter_assemblies (root : T.complex_assembly) ~on_complex ~on_base =
    on_complex root;
    List.iter
      (function
        | T.Complex c -> iter_assemblies c ~on_complex ~on_base
        | T.Base b -> on_base b)
      (R.read root.T.ca_sub)

  (** Apply [visit_cp] to every composite part of every base assembly,
      depth-first from the design root — once per (assembly, part)
      reference, as composite parts are shared. Returns the summed
      results.

      Checkpointed: each (base assembly, composite part) visit is one
      resumable unit, and a watermark is recorded with [R.checkpoint]
      at unit ENTRY — mark [k] stands for "k units completed" and its
      read-set prefix excludes unit [k]'s own graph reads. That
      placement matters: concurrent writers mostly invalidate the unit
      currently being traversed, and an entry mark lets the rollback
      salvage every completed unit while re-running only the
      invalidated one (an exit mark would force the rollback past the
      whole current unit's prefix). On a conflict the runtime rolls
      back to the newest still-valid watermark and re-runs this
      function, which consults [R.resume], skips the salvaged units
      and does NOT re-record the live mark for the unit it resumes
      at — re-checkpointing it would shift the mark/unit alignment.
      Skeleton re-reads during the skip phase hit the retained
      read-set prefix (dedup), so resuming costs the tree walk but
      none of the per-part graph work. On runtimes without the
      capability both calls are no-ops and this is the plain full
      traversal. *)
  let traverse_composite_parts setup visit_cp =
    let salvaged, saved = R.resume () in
    (* [salvaged] marks mean marks 0..salvaged-1 are live; the newest,
       mark salvaged-1, stands for salvaged-1 completed units. *)
    let skip = if salvaged = 0 then 0 else salvaged - 1 in
    let total = ref saved in
    let unit_no = ref 0 in
    iter_assemblies setup.S.module_.T.mod_design_root
      ~on_complex:(fun _ -> ())
      ~on_base:(fun ba ->
        List.iter
          (fun cp ->
            if !unit_no >= skip then begin
              if !unit_no > skip || salvaged = 0 then R.checkpoint ~acc:!total;
              total := !total + visit_cp cp
            end;
            incr unit_no)
          (R.read ba.T.ba_components));
    !total

  (** Random root-to-base-assembly descent (the ST1/ST2 path). *)
  let rec descend_random rng (a : T.assembly) : T.base_assembly =
    match a with
    | T.Base ba -> ba
    | T.Complex ca -> (
      match R.read ca.T.ca_sub with
      | [] -> Common.fail "descent reached a childless complex assembly"
      | children -> descend_random rng (Sb_random.element rng children))

  let random_base_assembly rng setup =
    descend_random rng (T.Complex setup.S.module_.T.mod_design_root)

  (** The base assembly's random composite part, or operation failure if
      it has none (the specified ST1/ST2 failure mode). *)
  let random_component rng (ba : T.base_assembly) =
    match R.read ba.T.ba_components with
    | [] -> Common.fail "base assembly %d has no composite parts" ba.T.ba_id
    | components -> Sb_random.element rng components

  (** Walk from [start] up through ascendant complex assemblies to the
      root, visiting each at most once (the ST3 bottom-up traversal);
      [f] is applied per first visit. Returns the visit count. *)
  let ascend_complex_assemblies (bas : T.base_assembly list) f =
    let visited = Hashtbl.create 16 in
    let rec up (ca : T.complex_assembly option) =
      match ca with
      | None -> ()
      | Some c ->
        if not (Hashtbl.mem visited c.T.ca_id) then begin
          Hashtbl.add visited c.T.ca_id ();
          f c;
          up c.T.ca_super
        end
    in
    List.iter (fun (ba : T.base_assembly) -> up ba.T.ba_super) bas;
    Hashtbl.length visited

  (* Random existing-or-not IDs, drawn over each pool's full capacity:
     lookups miss when the ID is currently unused — the specified
     failure mode of the index-based operations. *)

  let random_atomic_part_id rng setup =
    Sb_random.in_range rng 1 (S.Pool.capacity setup.S.ap_pool)

  let random_composite_part_id rng setup =
    Sb_random.in_range rng 1 (S.Pool.capacity setup.S.cp_pool)

  let random_base_assembly_id rng setup =
    Sb_random.in_range rng 1 (S.Pool.capacity setup.S.ba_pool)

  let random_complex_assembly_id rng setup =
    Sb_random.in_range rng 1 (S.Pool.capacity setup.S.ca_pool)

  let lookup_atomic_part rng setup =
    let id = random_atomic_part_id rng setup in
    match setup.S.ap_id_index.get id with
    | Some p -> p
    | None -> Common.fail "no atomic part with id %d" id

  let lookup_composite_part rng setup =
    let id = random_composite_part_id rng setup in
    match setup.S.cp_id_index.get id with
    | Some p -> p
    | None -> Common.fail "no composite part with id %d" id

  let lookup_base_assembly rng setup =
    let id = random_base_assembly_id rng setup in
    match setup.S.ba_id_index.get id with
    | Some b -> b
    | None -> Common.fail "no base assembly with id %d" id

  let lookup_complex_assembly rng setup =
    let id = random_complex_assembly_id rng setup in
    match setup.S.ca_id_index.get id with
    | Some c -> c
    | None -> Common.fail "no complex assembly with id %d" id
end
