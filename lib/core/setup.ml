(** Benchmark state: the object graph of {!Types}, the six indexes of
    the paper's Table 1, and the ID pools bounding structure growth —
    plus the factory and deletion helpers shared between the initial
    builder and the structure-modification operations. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module Idx = Index.Make (R)
  module Pool = Id_pool.Make (R)
  module B = Bag.Make (R)

  let eq_cp (a : T.composite_part) b = a.T.cp_id = b.T.cp_id
  let eq_ba (a : T.base_assembly) b = a.T.ba_id = b.T.ba_id

  (* Every constructor below brackets its tvar allocations with the
     abstract region the object belongs to, so the sanitizer's
     instrumented runtime can record a region per tvar and the
     [sb7-sanitize footprint] replay can cross-check accesses against
     the static footprint table. See Sb7_runtime.Region_ctx. *)
  let in_region r f = Sb7_runtime.Region_ctx.with_region r f

  type t = {
    params : Parameters.t;
    index_kind : Index_intf.kind;
    module_ : T.module_t;
    (* Table 1 indexes. *)
    ap_id_index : (int, T.atomic_part) Index_intf.t;
    ap_date_index : (int, T.atomic_part list) Index_intf.t; (* multimap *)
    cp_id_index : (int, T.composite_part) Index_intf.t;
    doc_title_index : (string, T.document) Index_intf.t;
    ba_id_index : (int, T.base_assembly) Index_intf.t;
    ca_id_index : (int, T.complex_assembly) Index_intf.t;
    (* ID pools; capacity = maximum object count of each kind. *)
    ap_pool : Pool.t;
    cp_pool : Pool.t;
    ba_pool : Pool.t;
    ca_pool : Pool.t;
  }

  let random_type rng params =
    Printf.sprintf "type #%d" (Sb_random.int rng params.Parameters.num_types)

  (* Remove the first occurrence of an element from a plain list (used
     for the date-index buckets); returns the list unchanged if
     absent. The tvar-level equivalent is {!Bag.remove_one}. *)
  let remove_one ~eq x l =
    let rec go acc = function
      | [] -> l
      | y :: rest ->
        if eq x y then List.rev_append acc rest else go (y :: acc) rest
    in
    go [] l

  (* --- Build-date index (a multimap: date -> parts bucket) --- *)

  let date_index_add setup (part : T.atomic_part) date =
    let bucket =
      Option.value (setup.ap_date_index.get date) ~default:[]
    in
    setup.ap_date_index.put date (part :: bucket)

  let date_index_remove setup (part : T.atomic_part) date =
    match setup.ap_date_index.get date with
    | None -> ()
    | Some bucket -> (
      match remove_one ~eq:(fun a (b : T.atomic_part) -> a.T.ap_id = b.T.ap_id) part bucket with
      | [] -> ignore (setup.ap_date_index.remove date)
      | rest -> setup.ap_date_index.put date rest)

  (* The T3/OP15 update: change the (indexed) build date and keep the
     date index consistent. *)
  let update_atomic_part_date setup (part : T.atomic_part) =
    let old_date = R.read part.T.ap_build_date in
    let new_date = T.nudge_date old_date in
    date_index_remove setup part old_date;
    R.write part.T.ap_build_date new_date;
    date_index_add setup part new_date

  (* --- Atomic parts and their connection graphs --- *)

  let new_atomic_part setup rng ~id =
    let params = setup.params in
    let part : T.atomic_part =
      in_region Sb7_runtime.Region.Atomic_parts (fun () ->
          {
            T.ap_id = id;
            ap_type = random_type rng params;
            ap_build_date =
              R.make
                (Sb_random.in_range rng params.min_atomic_date
                   params.max_atomic_date);
            ap_x = R.make (Sb_random.in_range rng 0 99_999);
            ap_y = R.make (Sb_random.in_range rng 0 99_999);
            ap_to = R.make [];
            ap_from = R.make [];
            ap_part_of = None;
          })
    in
    setup.ap_id_index.put id part;
    date_index_add setup part (R.read part.T.ap_build_date);
    part

  let connect setup rng (from_part : T.atomic_part) (to_part : T.atomic_part) =
    let conn : T.connection =
      {
        conn_type = random_type rng setup.params;
        conn_length = Sb_random.in_range rng 1 1_000;
        conn_from = from_part;
        conn_to = to_part;
      }
    in
    R.write from_part.T.ap_to (conn :: R.read from_part.T.ap_to);
    R.write to_part.T.ap_from (conn :: R.read to_part.T.ap_from)

  (* Build the atomic-part graph of a composite part: a ring guarantees
     the graph is connected (so a DFS from the root visits every part),
     then each part gets [num_conn_per_atomic - 1] extra connections to
     random parts — OO7's construction. *)
  let build_part_graph setup rng (ids : int array) =
    let parts = Array.map (fun id -> new_atomic_part setup rng ~id) ids in
    let n = Array.length parts in
    for i = 0 to n - 1 do
      connect setup rng parts.(i) parts.((i + 1) mod n)
    done;
    for i = 0 to n - 1 do
      for _ = 2 to setup.params.num_conn_per_atomic do
        connect setup rng parts.(i) parts.(Sb_random.int rng n)
      done
    done;
    parts

  let delete_atomic_part setup (part : T.atomic_part) =
    ignore (setup.ap_id_index.remove part.T.ap_id);
    date_index_remove setup part (R.read part.T.ap_build_date);
    Pool.put_back setup.ap_pool part.T.ap_id

  (* --- Composite parts and documents --- *)

  let composite_build_date rng (params : Parameters.t) =
    if Sb_random.percent rng params.young_comp_percent then
      Sb_random.in_range rng params.min_young_comp_date
        params.max_young_comp_date
    else
      Sb_random.in_range rng params.min_old_comp_date params.max_old_comp_date

  (* Create a composite part with its document and atomic-part graph.
     The caller must have reserved [cp_id] and the atomic-part ids. *)
  let new_composite_part setup rng ~cp_id ~part_ids =
    let params = setup.params in
    let document : T.document =
      in_region Sb7_runtime.Region.Documents (fun () ->
          {
            T.doc_id = cp_id;
            doc_title = Text.document_title ~part_id:cp_id;
            doc_text =
              R.make
                (Text.generate
                   ~phrase:(Text.document_phrase ~part_id:cp_id)
                   ~size:params.document_size);
            doc_part = None;
          })
    in
    let parts = build_part_graph setup rng part_ids in
    let cp : T.composite_part =
      in_region Sb7_runtime.Region.Composite_parts (fun () ->
          {
            T.cp_id;
            cp_type = random_type rng params;
            cp_build_date = R.make (composite_build_date rng params);
            cp_document = document;
            cp_used_in = R.make [];
            cp_root_part = R.make parts.(0);
            cp_parts = R.make (Array.to_list parts);
          })
    in
    (* sb7-lint: allow raw-mut -- set-once back-pointer closing the
       document/part cycle while the objects are still thread-private
       (published only by the index puts below, under the runtime). *)
    document.doc_part <- Some cp;
    (* sb7-lint: allow raw-mut -- same: pre-publication back-pointer. *)
    Array.iter (fun (p : T.atomic_part) -> p.T.ap_part_of <- Some cp) parts;
    setup.cp_id_index.put cp_id cp;
    setup.doc_title_index.put document.doc_title document;
    cp

  (* SM1 body: reserve IDs (failing cleanly before any mutation is
     visible under lock-based runtimes), then build. *)
  let create_composite_part setup rng =
    let n = setup.params.num_atomic_per_comp in
    if Pool.available setup.ap_pool < n then
      Common.fail "SM1: atomic-part id pool exhausted";
    let cp_id = Pool.get setup.cp_pool in
    let part_ids = Array.init n (fun _ -> Pool.get setup.ap_pool) in
    new_composite_part setup rng ~cp_id ~part_ids

  (* SM2 body: unlink from every owning base assembly, drop the
     document and all atomic parts from the indexes, recycle IDs. *)
  let delete_composite_part setup (cp : T.composite_part) =
    B.iter
      (fun (ba : T.base_assembly) ->
        ignore (B.remove_one ~eq:eq_cp ba.T.ba_components cp))
      cp.T.cp_used_in;
    B.clear cp.T.cp_used_in;
    List.iter (delete_atomic_part setup) (R.read cp.T.cp_parts);
    ignore (setup.doc_title_index.remove cp.T.cp_document.T.doc_title);
    ignore (setup.cp_id_index.remove cp.T.cp_id);
    Pool.put_back setup.cp_pool cp.T.cp_id

  (* --- Assemblies --- *)

  let assembly_build_date rng (params : Parameters.t) =
    Sb_random.in_range rng params.min_assm_date params.max_assm_date

  let new_base_assembly setup rng ~id ~(parent : T.complex_assembly)
      ~components =
    let ba : T.base_assembly =
      in_region Sb7_runtime.Region.Assemblies (fun () ->
          {
            T.ba_id = id;
            ba_type = random_type rng setup.params;
            ba_build_date = R.make (assembly_build_date rng setup.params);
            ba_components = R.make components;
            ba_super = Some parent;
          })
    in
    List.iter
      (fun (cp : T.composite_part) -> B.add cp.T.cp_used_in ba)
      components;
    R.write parent.T.ca_sub (T.Base ba :: R.read parent.T.ca_sub);
    setup.ba_id_index.put id ba;
    ba

  let unlink_base_assembly_components setup (ba : T.base_assembly) =
    ignore setup;
    B.iter
      (fun (cp : T.composite_part) ->
        ignore (B.remove_one ~eq:eq_ba cp.T.cp_used_in ba))
      ba.T.ba_components;
    B.clear ba.T.ba_components

  (* Delete a base assembly already detached from its parent's child
     list (the caller handles the parent side). *)
  let dispose_base_assembly setup (ba : T.base_assembly) =
    unlink_base_assembly_components setup ba;
    ignore (setup.ba_id_index.remove ba.T.ba_id);
    Pool.put_back setup.ba_pool ba.T.ba_id

  let new_complex_assembly setup rng ~id ~(parent : T.complex_assembly option)
      ~level =
    let ca : T.complex_assembly =
      in_region Sb7_runtime.Region.Assemblies (fun () ->
          {
            T.ca_id = id;
            ca_type = random_type rng setup.params;
            ca_build_date = R.make (assembly_build_date rng setup.params);
            ca_level = level;
            ca_sub = R.make [];
            ca_super = parent;
          })
    in
    (match parent with
    | Some p -> R.write p.T.ca_sub (T.Complex ca :: R.read p.T.ca_sub)
    | None -> ());
    setup.ca_id_index.put id ca;
    ca

  let dispose_complex_assembly setup (ca : T.complex_assembly) =
    ignore (setup.ca_id_index.remove ca.T.ca_id);
    Pool.put_back setup.ca_pool ca.T.ca_id

  (* Detach [child] from [parent]'s child list. *)
  let detach_assembly (parent : T.complex_assembly) (child : T.assembly) =
    let eq a b = T.assembly_id a = T.assembly_id b in
    ignore (B.remove_one ~eq parent.T.ca_sub child)

  (* --- Initial structure construction (single-threaded) --- *)

  let create ?(index_kind = Index_intf.Avl) ?(seed = 42)
      (params : Parameters.t) : t =
    let rng = Sb_random.create ~seed in
    let module_manual : T.manual =
      in_region Sb7_runtime.Region.Manual (fun () ->
          {
            T.man_id = 1;
            man_title = "Manual #1";
            man_text =
              R.make
                (Text.generate
                   ~phrase:(Text.manual_phrase ~module_id:1)
                   ~size:params.manual_size);
          })
    in
    let icmp = Int.compare and scmp = String.compare in
    let mk name cmp = Idx.create index_kind ~name ~cmp in
    (* The module record needs the design root, which needs the setup
       record (for indexes): build the root separately and stitch. *)
    let root : T.complex_assembly =
      in_region Sb7_runtime.Region.Assemblies (fun () ->
          {
            T.ca_id = 0 (* replaced below: ids come from the pool *);
            ca_type = "type #0";
            ca_build_date = R.make (assembly_build_date rng params);
            ca_level = params.num_assm_levels;
            ca_sub = R.make [];
            ca_super = None;
          })
    in
    let module_ : T.module_t =
      { mod_id = 1; mod_manual = module_manual; mod_design_root = root }
    in
    let setup =
      {
        params;
        index_kind;
        module_;
        ap_id_index = mk "atomic-part-id" icmp;
        ap_date_index = mk "atomic-part-build-date" icmp;
        cp_id_index = mk "composite-part-id" icmp;
        doc_title_index = mk "document-title" scmp;
        ba_id_index = mk "base-assembly-id" icmp;
        ca_id_index = mk "complex-assembly-id" icmp;
        ap_pool =
          Pool.create ~name:"atomic-parts"
            ~capacity:(Parameters.max_atomic_parts params);
        cp_pool =
          Pool.create ~name:"composite-parts"
            ~capacity:(Parameters.max_composite_parts params);
        ba_pool =
          Pool.create ~name:"base-assemblies"
            ~capacity:(Parameters.max_base_assemblies params);
        ca_pool =
          Pool.create ~name:"complex-assemblies"
            ~capacity:(Parameters.max_complex_assemblies params);
      }
    in
    (* Design library: the shared composite parts. *)
    let library =
      Array.init params.num_comp_per_module (fun _ ->
          let cp_id = Pool.get setup.cp_pool in
          let part_ids =
            Array.init params.num_atomic_per_comp (fun _ ->
                Pool.get setup.ap_pool)
          in
          new_composite_part setup rng ~cp_id ~part_ids)
    in
    let random_components () =
      List.init params.num_comp_per_assm (fun _ ->
          library.(Sb_random.int rng (Array.length library)))
    in
    (* Assembly tree, root included. *)
    let root_id = Pool.get setup.ca_pool in
    let root = { root with ca_id = root_id } in
    let module_ = { module_ with mod_design_root = root } in
    let setup = { setup with module_ } in
    setup.ca_id_index.put root_id root;
    let rec populate (parent : T.complex_assembly) level =
      for _ = 1 to params.num_assm_per_assm do
        if level = 1 then
          ignore
            (new_base_assembly setup rng
               ~id:(Pool.get setup.ba_pool)
               ~parent ~components:(random_components ()))
        else begin
          let ca =
            new_complex_assembly setup rng
              ~id:(Pool.get setup.ca_pool)
              ~parent:(Some parent) ~level
          in
          populate ca (level - 1)
        end
      done
    in
    populate root (params.num_assm_levels - 1);
    setup
end
