(** Index backed by a B+tree in which every node lives in its own
    transactional variable. Concurrent transactions conflict only when
    they touch the same node, so updates to distinct key regions can
    commit in parallel — the "implement the indexes manually, using
    B-trees, with each node synchronized separately" fix proposed in
    §5 of the paper.

    Deletions remove keys from leaves without rebalancing (the tree can
    only lose height via an emptied root child); the benchmark's
    workloads delete at most as many keys as they insert, so the tree
    stays within a constant factor of balanced. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  let max_keys = 16

  type ('k, 'v) node =
    | Leaf of ('k * 'v) array
    | Internal of 'k array * ('k, 'v) node R.tvar array
        (* [Internal (seps, children)]: [Array.length children =
           Array.length seps + 1]; child [i] holds keys < [seps.(i)],
           the last child holds keys >= the last separator. *)

  let child_for cmp seps k =
    let n = Array.length seps in
    let rec scan i = if i < n && cmp k seps.(i) >= 0 then scan (i + 1) else i in
    scan 0

  (* First index with key >= k. Pure binary search, clean under
     sb7-lint --strict-local. *)
  let leaf_search cmp arr k =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cmp (fst arr.(mid)) k < 0 then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length arr)

  let rec find cmp nref k =
    match R.read nref with
    | Leaf arr ->
      let i = leaf_search cmp arr k in
      if i < Array.length arr && cmp (fst arr.(i)) k = 0 then Some (snd arr.(i))
      else None
    | Internal (seps, children) -> find cmp children.(child_for cmp seps k) k

  let insert_leaf cmp arr k v =
    let i = leaf_search cmp arr k in
    if i < Array.length arr && cmp (fst arr.(i)) k = 0 then begin
      let copy = Array.copy arr in
      copy.(i) <- (k, v);
      copy
    end
    else begin
      let n = Array.length arr in
      let copy = Array.make (n + 1) (k, v) in
      Array.blit arr 0 copy 0 i;
      Array.blit arr i copy (i + 1) (n - i);
      copy
    end

  (* Returns [Some (separator, right_node)] if the node split. *)
  let rec insert cmp nref k v =
    match R.read nref with
    | Leaf arr ->
      let arr = insert_leaf cmp arr k v in
      if Array.length arr <= max_keys then begin
        R.write nref (Leaf arr);
        None
      end
      else begin
        let mid = Array.length arr / 2 in
        let left = Array.sub arr 0 mid in
        let right = Array.sub arr mid (Array.length arr - mid) in
        R.write nref (Leaf left);
        Some (fst right.(0), Leaf right)
      end
    | Internal (seps, children) -> (
      let ci = child_for cmp seps k in
      match insert cmp children.(ci) k v with
      | None -> None
      | Some (sep, right_node) ->
        let right_ref = R.make right_node in
        let nseps = Array.length seps in
        let seps' = Array.make (nseps + 1) sep in
        Array.blit seps 0 seps' 0 ci;
        Array.blit seps ci seps' (ci + 1) (nseps - ci);
        let children' = Array.make (nseps + 2) right_ref in
        Array.blit children 0 children' 0 (ci + 1);
        Array.blit children (ci + 1) children' (ci + 2) (nseps - ci);
        if Array.length seps' <= max_keys then begin
          R.write nref (Internal (seps', children'));
          None
        end
        else begin
          let mid = Array.length seps' / 2 in
          let sep_up = seps'.(mid) in
          let lseps = Array.sub seps' 0 mid in
          let rseps = Array.sub seps' (mid + 1) (Array.length seps' - mid - 1) in
          let lchildren = Array.sub children' 0 (mid + 1) in
          let rchildren =
            Array.sub children' (mid + 1) (Array.length children' - mid - 1)
          in
          R.write nref (Internal (lseps, lchildren));
          Some (sep_up, Internal (rseps, rchildren))
        end)

  let rec remove cmp nref k =
    match R.read nref with
    | Leaf arr ->
      let i = leaf_search cmp arr k in
      if i < Array.length arr && cmp (fst arr.(i)) k = 0 then begin
        let n = Array.length arr in
        let copy = Array.make (n - 1) (k, snd arr.(i)) in
        Array.blit arr 0 copy 0 i;
        Array.blit arr (i + 1) copy i (n - i - 1);
        R.write nref (Leaf copy);
        true
      end
      else false
    | Internal (seps, children) -> remove cmp children.(child_for cmp seps k) k

  let rec iter f nref =
    match R.read nref with
    | Leaf arr -> Array.iter (fun (k, v) -> f k v) arr
    | Internal (_, children) -> Array.iter (iter f) children

  let rec range cmp lo hi nref acc =
    match R.read nref with
    | Leaf arr ->
      let n = Array.length arr in
      let rec collect i acc =
        if i < 0 then acc
        else begin
          let k, v = arr.(i) in
          if cmp k lo < 0 then acc
          else if cmp k hi > 0 then collect (i - 1) acc
          else collect (i - 1) ((k, v) :: acc)
        end
      in
      collect (n - 1) acc
    | Internal (seps, children) ->
      (* Child [i] spans [seps.(i-1), seps.(i)); recurse into those
         intersecting [lo, hi], right to left to build ascending acc. *)
      let n = Array.length children in
      let rec visit i acc =
        if i < 0 then acc
        else begin
          let min_ok = i = 0 || cmp seps.(i - 1) hi <= 0 in
          let max_ok = i = n - 1 || cmp lo seps.(i) < 0 in
          let acc =
            if min_ok && max_ok then range cmp lo hi children.(i) acc else acc
          in
          visit (i - 1) acc
        end
      in
      visit (n - 1) acc

  let rec count nref =
    match R.read nref with
    | Leaf arr -> Array.length arr
    | Internal (_, children) ->
      Array.fold_left (fun acc c -> acc + count c) 0 children

  (** Structural invariants, for property tests: key ordering within and
      across nodes, and node occupancy. *)
  let well_formed cmp root_ref =
    (* [all_indices n p] = p holds for every index in [0, n). *)
    let all_indices n p =
      let rec go i = i >= n || (p i && go (i + 1)) in
      go 0
    in
    let strictly_sorted key arr =
      all_indices
        (Array.length arr - 1)
        (fun i -> cmp (key arr.(i)) (key arr.(i + 1)) < 0)
    in
    let rec check nref lo hi =
      let in_bounds k =
        (match lo with None -> true | Some l -> cmp k l >= 0)
        && match hi with None -> true | Some h -> cmp k h < 0
      in
      match R.read nref with
      | Leaf arr ->
        strictly_sorted fst arr
        && Array.for_all (fun (k, _) -> in_bounds k) arr
      | Internal (seps, children) ->
        let n = Array.length children in
        n = Array.length seps + 1
        && Array.length seps <= max_keys
        && Array.for_all in_bounds seps
        && strictly_sorted Fun.id seps
        && all_indices n (fun i ->
               let lo' = if i = 0 then lo else Some seps.(i - 1) in
               let hi' = if i = n - 1 then hi else Some seps.(i) in
               check children.(i) lo' hi')
    in
    check root_ref None None

  (** Returns the index together with its structural-invariant checker
      (used by the property tests). *)
  let create_with_check ~name ~cmp : ('k, 'v) Index_intf.t * (unit -> bool) =
    (* Node tvars are allocated both here and during splits inside
       [put]; bracket both so every node carries the Indexes region. *)
    let in_indexes f =
      Sb7_runtime.Region_ctx.with_region Sb7_runtime.Region.Indexes f
    in
    let root = in_indexes (fun () -> R.make (Leaf [||])) in
    let root_ref = in_indexes (fun () -> R.make root) in
    let put k v =
      in_indexes @@ fun () ->
      let r = R.read root_ref in
      match insert cmp r k v with
      | None -> ()
      | Some (sep, right_node) ->
        (* Root split: [insert] left the low half in [r]; keep the root
           tvar stable by moving both halves into fresh children. *)
        let left_ref = R.make (R.read r) in
        let right_ref = R.make right_node in
        R.write r (Internal ([| sep |], [| left_ref; right_ref |]))
    in
    let index : ('k, 'v) Index_intf.t =
      {
        name;
        get = (fun k -> find cmp (R.read root_ref) k);
        put;
        remove = (fun k -> remove cmp (R.read root_ref) k);
        range = (fun lo hi -> range cmp lo hi (R.read root_ref) []);
        iter = (fun f -> iter f (R.read root_ref));
        size = (fun () -> count (R.read root_ref));
      }
    in
    (index, fun () -> well_formed cmp (R.read root_ref))

  let create ~name ~cmp : ('k, 'v) Index_intf.t =
    fst (create_with_check ~name ~cmp)
end
