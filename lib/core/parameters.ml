(** Benchmark scale parameters.

    The [medium] preset is the paper's configuration: the "medium" size
    of OO7 confined to a single module — six levels of complex
    assemblies with three children each, 500 composite parts, each a
    graph of 200 atomic parts with three connections per part (100,000
    atomic parts in total), 20 kB documents, a 1 MB manual.

    Build dates follow OO7: atomic parts and assemblies are dated in
    [1000, 1999]; a fraction of composite parts is "young" (dated in
    [2000, 2999], i.e. newer than every assembly — these are the
    matches of Q6/ST5) and the rest "old" ([0, 999]). The atomic-part
    date range makes OP2's query window 1% selective and OP3's 10%,
    matching OO7's Q2/Q3. *)

type t = {
  num_atomic_per_comp : int;
  num_conn_per_atomic : int;
  document_size : int;
  manual_size : int;
  num_comp_per_module : int;
  num_assm_per_assm : int;  (** tree branching factor *)
  num_assm_levels : int;  (** base assemblies at level 1, root at top *)
  num_comp_per_assm : int;
  min_atomic_date : int;
  max_atomic_date : int;
  min_assm_date : int;
  max_assm_date : int;
  min_old_comp_date : int;
  max_old_comp_date : int;
  min_young_comp_date : int;
  max_young_comp_date : int;
  young_comp_percent : int;
  num_types : int;  (** distinct "type" attribute strings *)
  growth_slack_percent : int;
      (** extra ID-pool capacity beyond the initial population, bounding
          how far SM1/SM5/SM7 can grow the structure *)
}

let medium =
  {
    num_atomic_per_comp = 200;
    num_conn_per_atomic = 3;
    document_size = 20_000;
    manual_size = 1_000_000;
    num_comp_per_module = 500;
    num_assm_per_assm = 3;
    num_assm_levels = 7;
    num_comp_per_assm = 3;
    min_atomic_date = 1000;
    max_atomic_date = 1999;
    min_assm_date = 1000;
    max_assm_date = 1999;
    min_old_comp_date = 0;
    max_old_comp_date = 999;
    min_young_comp_date = 2000;
    max_young_comp_date = 2999;
    young_comp_percent = 10;
    num_types = 10;
    growth_slack_percent = 10;
  }

(** A reduced structure for fast benchmark points: same shape, ~1/10
    of the objects. *)
let small =
  {
    medium with
    num_atomic_per_comp = 20;
    document_size = 2_000;
    manual_size = 100_000;
    num_comp_per_module = 100;
    num_assm_levels = 5;
  }

(** A minimal structure for unit tests. *)
let tiny =
  {
    medium with
    num_atomic_per_comp = 5;
    num_conn_per_atomic = 2;
    document_size = 200;
    manual_size = 2_000;
    num_comp_per_module = 10;
    num_assm_levels = 3;
    growth_slack_percent = 50;
  }

let presets = [ ("tiny", tiny); ("small", small); ("medium", medium) ]

let of_string s =
  match List.assoc_opt (String.lowercase_ascii s) presets with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown scale %S (expected %s)" s
         (String.concat " | " (List.map fst presets)))

(* Derived quantities. *)

let rec pow base e = if e = 0 then 1 else base * pow base (e - 1)

(** Complex assemblies occupy levels 2..levels; one subtree root. *)
let initial_complex_assemblies t =
  let rec total level = if level < 2 then 0 else pow t.num_assm_per_assm (t.num_assm_levels - level) + total (level - 1) in
  total t.num_assm_levels

let initial_base_assemblies t = pow t.num_assm_per_assm (t.num_assm_levels - 1)
let initial_atomic_parts t = t.num_comp_per_module * t.num_atomic_per_comp

let with_slack t n = n + ((n * t.growth_slack_percent + 99) / 100)

let max_composite_parts t = with_slack t t.num_comp_per_module
let max_atomic_parts t = max_composite_parts t * t.num_atomic_per_comp
let max_base_assemblies t = with_slack t (initial_base_assemblies t)
let max_complex_assemblies t = with_slack t (initial_complex_assemblies t)

let pp ppf t =
  (* sb7-lint: allow irrevocable -- report-time pretty-printer; it is
     module-reachable from Setup but never called inside an operation
     body (operations return ints, they never receive a formatter). *)
  Format.fprintf ppf
    "composite parts: %d (x%d atomic parts) | assembly levels: %d (fanout \
     %d) | document: %dB | manual: %dB"
    t.num_comp_per_module t.num_atomic_per_comp t.num_assm_levels
    t.num_assm_per_assm t.document_size t.manual_size
