(** Index backed by an immutable AVL map held in a single transactional
    variable — the analogue of the original benchmark's [TreeMap].
    Under an object-granularity STM the whole index is one object, so
    any update conflicts with every concurrent access: exactly the
    configuration whose cost the paper's §5 analyses. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  let create ~name ~cmp : ('k, 'v) Index_intf.t =
    let root =
      Sb7_runtime.Region_ctx.with_region Sb7_runtime.Region.Indexes (fun () ->
          R.make Avl.empty)
    in
    {
      name;
      get = (fun k -> Avl.find cmp k (R.read root));
      put = (fun k v -> R.write root (Avl.add cmp k v (R.read root)));
      remove =
        (fun k ->
          let t = R.read root in
          if Avl.mem cmp k t then begin
            R.write root (Avl.remove cmp k t);
            true
          end
          else false);
      range = (fun lo hi -> Avl.range cmp lo hi (R.read root));
      iter = (fun f -> Avl.iter f (R.read root));
      size = (fun () -> Avl.cardinal (R.read root));
    }
end
