(** Transactional pool of object IDs.

    The structure-modification operations create and delete objects at a
    high rate; IDs are recycled through this pool, and its fixed
    capacity is what bounds the growth of the structure ("the maximum
    size of the structure is confined", paper §3). The free list lives
    in a transactional variable so ID allocation participates in
    whatever synchronization strategy is active. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  type t = {
    pool_name : string;
    capacity : int;
    free : int list R.tvar; (* IDs not currently in use *)
    free_count : int R.tvar;
  }

  (** All IDs [1..capacity] initially free. *)
  let create ~name ~capacity =
    assert (capacity > 0);
    Sb7_runtime.Region_ctx.with_region Sb7_runtime.Region.Indexes (fun () ->
        {
          pool_name = name;
          capacity;
          free = R.make (List.init capacity (fun i -> i + 1));
          free_count = R.make capacity;
        })

  let capacity t = t.capacity
  let available t = R.read t.free_count

  (** Take one free ID; fails (as an operation failure) when the pool is
      exhausted, i.e. the structure reached its maximum size. *)
  let get t =
    match R.read t.free with
    | [] -> Common.fail "id pool %s exhausted" t.pool_name
    | id :: rest ->
      R.write t.free rest;
      R.write t.free_count (R.read t.free_count - 1);
      id

  (** Return an ID to the pool (after deleting the object). *)
  let put_back t id =
    assert (id >= 1 && id <= t.capacity);
    R.write t.free (id :: R.read t.free);
    R.write t.free_count (R.read t.free_count + 1)
end
