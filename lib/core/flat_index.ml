(** Index backed by a sorted array of bindings held in a single
    transactional variable. Every update allocates and fills a complete
    copy of the array, making the "object-level logging copies the whole
    big object" cost of the paper physically real for every runtime —
    the worst-case index representation, used by the ablation bench. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  (* Binary search for the insertion point of [k] (first index with
     key >= k). Pure, so it stays clean under sb7-lint --strict-local. *)
  let search cmp (arr : ('k * 'v) array) k =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cmp (fst arr.(mid)) k < 0 then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length arr)

  let found cmp arr k i = i < Array.length arr && cmp (fst arr.(i)) k = 0

  let create ~name ~cmp : ('k, 'v) Index_intf.t =
    let cells =
      Sb7_runtime.Region_ctx.with_region Sb7_runtime.Region.Indexes (fun () ->
          R.make [||])
    in
    {
      name;
      get =
        (fun k ->
          let arr = R.read cells in
          let i = search cmp arr k in
          if found cmp arr k i then Some (snd arr.(i)) else None);
      put =
        (fun k v ->
          let arr = R.read cells in
          let i = search cmp arr k in
          if found cmp arr k i then begin
            let copy = Array.copy arr in
            copy.(i) <- (k, v);
            R.write cells copy
          end
          else begin
            let n = Array.length arr in
            let copy = Array.make (n + 1) (k, v) in
            Array.blit arr 0 copy 0 i;
            Array.blit arr i copy (i + 1) (n - i);
            R.write cells copy
          end);
      remove =
        (fun k ->
          let arr = R.read cells in
          let i = search cmp arr k in
          if found cmp arr k i then begin
            let n = Array.length arr in
            let copy = Array.make (n - 1) arr.(0) in
            Array.blit arr 0 copy 0 i;
            Array.blit arr (i + 1) copy i (n - i - 1);
            R.write cells copy;
            true
          end
          else false);
      range =
        (fun lo hi ->
          let arr = R.read cells in
          let start = search cmp arr lo in
          let rec collect i acc =
            if i >= start then collect (i - 1) (arr.(i) :: acc) else acc
          in
          let rec past_hi i =
            if i < Array.length arr && cmp (fst arr.(i)) hi <= 0 then
              past_hi (i + 1)
            else i
          in
          collect (past_hi start - 1) []);
      iter =
        (fun f ->
          let arr = R.read cells in
          Array.iter (fun (k, v) -> f k v) arr);
      size = (fun () -> Array.length (R.read cells));
    }
end
