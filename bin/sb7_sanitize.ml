(* sb7-sanitize: run the benchmark under the opacity + lockset
   sanitizer (lib/sanitize) and gate on the verdict.

   Two commands:

   - [check]: every registered strategy gets a sanitized run; any
     finding fails the command (exit 1) and dumps the offending trace
     for offline inspection. The seq runtime has no synchronization at
     all, so it is only meaningful — and only run — single-threaded.

   - [seeded FIXTURE]: enable one deliberately planted bug
     (tl2-no-validation: TL2 commits and extends without validating its
     read set; tl2-unvalidated-resume: a partial abort salvages its
     checkpoint prefix without validating it; norec-skip-revalidation:
     NOrec adopts new sequence numbers and commits without its
     value-based validation pass; medium-drop-lock: the
     medium runtime silently skips its first write lock) and demand
     that the checker flags it. A seeded
     run that comes back clean fails the command: the sanitizer did not
     bite. Detection is probabilistic — the bug needs an actual
     interleaving — so the run is retried with doubled duration a few
     times before giving up.

   Before running anything, the lock-order table the dynamic checker
   uses is cross-checked against the R3 declaration sb7-lint enforces
   statically (Lint_config.default), so the two tools cannot silently
   drift apart. *)

module B = Sb7_harness.Benchmark
module Workload = Sb7_harness.Workload
module Checker = Sb7_sanitize.Checker
module Trace = Sb7_sanitize.Trace

open Cmdliner

(* --- Static/dynamic lock-order cross-check ------------------------- *)

let cross_check_lock_order () =
  let module LC = Sb7_analysis.Lint_config in
  let static =
    match LC.spec_for LC.default "Sb7_runtime__Medium_runtime" with
    | Some spec -> spec.LC.r3_order
    | None -> []
  in
  if static <> [ "structure"; "domains" ] then begin
    Format.eprintf
      "error: sb7-lint's R3 lock order for the medium runtime is %s, but \
       the sanitizer's rank table assumes structure-before-domains; update \
       Checker.profile_of_runtime to match@."
      (String.concat " < " static);
    exit 2
  end;
  let dynamic = (Checker.profile_of_runtime "medium").Checker.ranked_locks in
  let rank name = List.assoc_opt name dynamic in
  match rank "structure" with
  | None -> ()
  | Some rs ->
    List.iter
      (fun (name, r) ->
        if String.length name > 7 && String.sub name 0 7 = "domain-" && r <= rs
        then begin
          Format.eprintf
            "error: sanitizer rank table orders %s before the structure \
             lock, contradicting the R3 declaration@." name;
          exit 2
        end)
      dynamic

(* --- Shared run plumbing ------------------------------------------- *)

let config ~threads ~length ~scale:(scale_name, scale) ~seed ~workload =
  {
    B.default_config with
    B.threads;
    duration_s = length;
    workload;
    scale;
    scale_name;
    seed;
    sanitize = true;
  }

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let save_trace ~dir ~name =
  ensure_dir dir;
  let path = Filename.concat dir (name ^ ".trace") in
  Trace.save path (Trace.dump ());
  path

(* Analyze whatever the trace buffers currently hold; used when a
   seeded bug is violent enough to crash the run before Benchmark could
   produce its verdict. *)
let analyze_current runtime_name =
  Trace.disable ();
  Checker.analyze
    ~profile:(Checker.profile_of_runtime runtime_name)
    (Trace.dump ())

(* --- check: all honest strategies must come back clean ------------- *)

let check threads length scale seed dir =
  cross_check_lock_order ();
  let failed = ref false in
  List.iter
    (fun (name, _) ->
      (* seq provides no synchronization: concurrent domains would race
         by design, so it is validated single-threaded only. *)
      let threads = if String.equal name "seq" then 1 else threads in
      let cfg =
        config ~threads ~length ~scale ~seed ~workload:Workload.Read_write
      in
      match Sb7_harness.Driver.run ~runtime_name:name cfg with
      | Error e ->
        Format.printf "%-8s ERROR %s@." name e;
        failed := true
      | Ok result -> (
        match result.Sb7_harness.Run_result.sanitizer with
        | Some v when Checker.clean v ->
          Format.printf "%-8s clean  (%d domains, %d attempts, %d events)@."
            name v.Checker.domains v.Checker.attempts v.Checker.events
        | Some v ->
          let path = save_trace ~dir ~name in
          Format.printf "%-8s FLAGGED (trace saved to %s)@.%s@." name path
            (Checker.summary v);
          failed := true
        | None ->
          Format.printf "%-8s ERROR sanitizer produced no verdict@." name;
          failed := true))
    Sb7_runtime.Registry.all;
  if !failed then 1 else 0

(* --- seeded: a planted bug must be flagged ------------------------- *)

type fixture = {
  fx_name : string;
  fx_runtime : string;
  fx_arm : unit -> unit;
  fx_disarm : unit -> unit;
  fx_expected : Checker.verdict -> string list;
      (* the finding category this bug must show up in *)
  fx_expected_name : string;
}

let fixtures =
  [
    {
      fx_name = "tl2-no-validation";
      fx_runtime = "tl2";
      fx_arm = Sb7_stm.Tl2.Unsafe.disable_validation;
      fx_disarm = Sb7_stm.Tl2.Unsafe.reset;
      fx_expected = (fun v -> v.Checker.opacity);
      fx_expected_name = "opacity";
    };
    {
      (* Partial-abort shortcut: rollback to the newest checkpoint
         without validating the salvaged read-set prefix. The resumed
         attempt can then straddle a concurrent commit — re-reads after
         the resume observe newer versions than the salvaged prefix
         did, which the checker reports as non-repeatable reads. *)
      fx_name = "tl2-unvalidated-resume";
      fx_runtime = "tl2";
      fx_arm = Sb7_stm.Tl2.Unsafe.disable_resume_validation;
      fx_disarm = Sb7_stm.Tl2.Unsafe.reset;
      fx_expected = (fun v -> v.Checker.opacity);
      fx_expected_name = "opacity";
    };
    {
      (* NOrec with value-based revalidation skipped: reads adopt the
         current global sequence number without checking that every
         previously read location still holds the value observed, and
         commits publish without the closing validation pass. A
         transaction straddling a concurrent commit then mixes
         snapshots, which the checker reports as non-repeatable reads. *)
      fx_name = "norec-skip-revalidation";
      fx_runtime = "norec";
      fx_arm = Sb7_stm.Norec.Unsafe.disable_revalidation;
      fx_disarm = Sb7_stm.Norec.Unsafe.reset;
      fx_expected = (fun v -> v.Checker.opacity);
      fx_expected_name = "opacity";
    };
    {
      fx_name = "medium-drop-lock";
      fx_runtime = "medium";
      fx_arm = Sb7_runtime.Medium_runtime.Unsafe.drop_first_write_lock;
      fx_disarm = Sb7_runtime.Medium_runtime.Unsafe.reset;
      fx_expected = (fun v -> v.Checker.races);
      fx_expected_name = "lockset race";
    };
  ]

let fixture_conv =
  let parse s =
    match List.find_opt (fun f -> String.equal f.fx_name s) fixtures with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown fixture %S (expected %s)" s
              (String.concat " | "
                 (List.map (fun f -> f.fx_name) fixtures))))
  in
  Arg.conv ~docv:"FIXTURE"
    (parse, fun ppf f -> Format.pp_print_string ppf f.fx_name)

let seeded fixture threads length scale seed dir =
  cross_check_lock_order ();
  let attempts = 3 in
  let rec go i length =
    fixture.fx_arm ();
    let cfg =
      config ~threads ~length ~scale ~seed:(seed + i)
        ~workload:Workload.Write_dominated
    in
    let verdict =
      match Sb7_harness.Driver.run ~runtime_name:fixture.fx_runtime cfg with
      | Ok result -> result.Sb7_harness.Run_result.sanitizer
      | Error e ->
        Format.eprintf "error: %s@." e;
        exit 2
      | exception exn ->
        (* The corrupted structure blew up mid-run; the trace up to the
           crash is still analyzable, and the crash corroborates the
           planted bug rather than excusing a missed detection. *)
        Format.printf "run crashed (%s); analyzing partial trace@."
          (Printexc.to_string exn);
        Some (analyze_current fixture.fx_runtime)
    in
    fixture.fx_disarm ();
    match verdict with
    | None ->
      Format.eprintf "error: sanitizer produced no verdict@.";
      exit 2
    | Some v -> (
      match fixture.fx_expected v with
      | finding :: _ ->
        Format.printf "%s: detected (%s finding, attempt %d/%d)@.  %s@."
          fixture.fx_name fixture.fx_expected_name i attempts finding;
        0
      | [] ->
        if not (Checker.clean v) then
          (* flagged, just not in the expected category: print and keep
             trying — the planted bug has a characteristic signature
             and the fixture must prove THAT detector bites *)
          Format.printf
            "attempt %d/%d: findings in other categories only@.%s@." i
            attempts (Checker.summary v)
        else Format.printf "attempt %d/%d: came back clean@." i attempts;
        if i < attempts then go (i + 1) (length *. 2.)
        else begin
          let path = save_trace ~dir ~name:fixture.fx_name in
          Format.printf
            "%s: NOT DETECTED after %d attempts — the sanitizer failed to \
             bite (last trace saved to %s)@.%s@."
            fixture.fx_name attempts path (Checker.summary v);
          1
        end)
  in
  go 1 length

(* --- footprint: trace replay vs the static footprint table --------- *)

(* The static table and region naming, in the shape the checker's
   replay consumes. Going through Sb7_core.Op_footprint.masks keeps the
   CLI and the generated table on one definition of "may-footprint". *)
let fp_table = Sb7_core.Op_footprint.masks

let fp_region_name code =
  match Sb7_runtime.Region.of_int code with
  | Some r -> Sb7_runtime.Region.to_string r
  | None -> Printf.sprintf "region#%d" code

let fp_replay what dump =
  let v = Checker.footprint ~table:fp_table ~region_name:fp_region_name dump in
  Format.printf "%-8s %s@." what
    (if Checker.fp_clean v then
       Printf.sprintf "clean  (%d domains, %d attempts, %d accesses checked)"
         v.Checker.fp_domains v.Checker.fp_attempts v.Checker.fp_checked
     else "ESCAPES");
  if not (Checker.fp_clean v) then
    Format.printf "%s@." (Checker.fp_summary v);
  v

(* Replay a saved trace file. *)
let footprint_trace path =
  if not (Sys.file_exists path) then begin
    Format.eprintf "error: no such trace file %s@." path;
    exit 2
  end;
  let v = fp_replay (Filename.basename path) (Trace.load path) in
  if Checker.fp_clean v then 0 else 1

(* Fresh sanitized run of every registered runtime; each dump must
   replay with zero contradictions. *)
let footprint_all threads length scale seed dir =
  let failed = ref false in
  List.iter
    (fun (name, _) ->
      let threads = if String.equal name "seq" then 1 else threads in
      let cfg =
        config ~threads ~length ~scale ~seed ~workload:Workload.Read_write
      in
      match Sb7_harness.Driver.run ~runtime_name:name cfg with
      | Error e ->
        Format.printf "%-8s ERROR %s@." name e;
        failed := true
      | Ok _ ->
        (* The run's verdict used the same dump; replay it against the
           footprint table (note buffers survive the run). *)
        let v = fp_replay name (Trace.dump ()) in
        if not (Checker.fp_clean v) then begin
          let path = save_trace ~dir ~name:(name ^ "-footprint") in
          Format.printf "  trace saved to %s@." path;
          failed := true
        end)
    Sb7_runtime.Registry.all;
  if !failed then 1 else 0

(* Seeded escapes: arm one of the harness's planted out-of-region
   accesses and demand the replay reports it. The injection fires on
   every execution of its operation, so detection only requires the op
   to be sampled at all — retried with doubled duration for tiny runs. *)
type fp_fixture = { fpx_name : string; fpx_arm : unit -> unit }

let fp_fixtures =
  [
    { fpx_name = "read-escape"; fpx_arm = B.Unsafe.read_escape };
    { fpx_name = "write-escape"; fpx_arm = B.Unsafe.write_escape };
  ]

let fp_fixture_conv =
  let parse s =
    match List.find_opt (fun f -> String.equal f.fpx_name s) fp_fixtures with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown footprint fixture %S (expected %s)" s
              (String.concat " | " (List.map (fun f -> f.fpx_name) fp_fixtures))))
  in
  Arg.conv ~docv:"FIXTURE"
    (parse, fun ppf f -> Format.pp_print_string ppf f.fpx_name)

let footprint_seeded fixture threads length scale seed dir =
  let attempts = 3 in
  let runtime_name = "tl2" in
  let rec go i length =
    fixture.fpx_arm ();
    let cfg =
      config ~threads ~length ~scale ~seed:(seed + i)
        ~workload:Workload.Read_write
    in
    let outcome =
      match Sb7_harness.Driver.run ~runtime_name cfg with
      | Error e ->
        Format.eprintf "error: %s@." e;
        exit 2
      | Ok _ -> fp_replay fixture.fpx_name (Trace.dump ())
    in
    B.Unsafe.reset ();
    if outcome.Checker.fp_escape_count > 0 then begin
      Format.printf "%s: detected (attempt %d/%d)@." fixture.fpx_name i
        attempts;
      0
    end
    else if i < attempts then go (i + 1) (length *. 2.)
    else begin
      let path = save_trace ~dir ~name:("footprint-" ^ fixture.fpx_name) in
      Format.printf
        "%s: NOT DETECTED after %d attempts — the footprint replay failed \
         to bite (last trace saved to %s)@."
        fixture.fpx_name attempts path;
      1
    end
  in
  go 1 length

let footprint trace seeded threads length scale seed dir =
  match (trace, seeded) with
  | Some _, Some _ ->
    Format.eprintf "error: TRACE and --seeded are mutually exclusive@.";
    exit 2
  | Some path, None -> footprint_trace path
  | None, Some fixture -> footprint_seeded fixture threads length scale seed dir
  | None, None -> footprint_all threads length scale seed dir

(* --- Seeded domain race (R7 static/dynamic cross-check) ------------ *)

(* [domain-race]: the static half re-runs the lint engine over the
   given .cmt tree with the Race_probe waiver stripped from the default
   configuration and demands the R7 domain-escape finding reappear in
   race_probe.ml; the dynamic half runs the probe disarmed (exact
   counts required) and armed (lost updates required, with retries —
   the race needs an actual interleaving). Static finding = real race,
   mirroring the R3↔checker lock-rank cross-check above. *)

let probe_unit = "Sb7_harness__Race_probe"

let domain_race_static cmt_dir =
  let module LC = Sb7_analysis.Lint_config in
  let config =
    let d = LC.default in
    {
      d with
      LC.r7 =
        {
          d.LC.r7 with
          LC.r7_allowed =
            List.filter
              (fun (u, _, _) -> u <> probe_unit)
              d.LC.r7.LC.r7_allowed;
        };
    }
  in
  let result =
    Sb7_analysis.Lint_engine.run ~config ~source_root:"." ~paths:[ cmt_dir ]
      ()
  in
  if
    not
      (List.mem probe_unit result.Sb7_analysis.Lint_engine.units_checked)
  then begin
    Format.eprintf
      "error: %s not among the %d unit(s) under %s — run from the dune \
       build root (_build/default) so --cmt-dir resolves to .cmt files@."
      probe_unit
      (List.length result.Sb7_analysis.Lint_engine.units_checked)
      cmt_dir;
    exit 1
  end;
  let hits =
    List.filter
      (fun (f : Sb7_analysis.Lint_finding.t) ->
        f.rule = "domain-escape" && f.unit_name = probe_unit)
      result.Sb7_analysis.Lint_engine.findings
  in
  match hits with
  | [] ->
    Format.eprintf
      "error: stripping the %s waiver produced no R7 finding — the live \
       seeded race is no longer statically visible@."
      probe_unit;
    exit 1
  | f :: _ ->
    Format.printf "domain-race: static: %d R7 finding(s) at %s:%d with the \
                   waiver stripped@."
      (List.length hits) f.Sb7_analysis.Lint_finding.file
      f.Sb7_analysis.Lint_finding.line

let domain_race cmt_dir threads iters =
  let module RP = Sb7_harness.Race_probe in
  (match cmt_dir with
  | Some dir -> domain_race_static dir
  | None ->
    Format.printf
      "domain-race: static cross-check skipped (pass --cmt-dir from the \
       dune build root to enable it)@.");
  RP.Unsafe.reset ();
  let o = RP.run ~domains:threads ~iters () in
  if o.RP.unguarded <> o.RP.expected || o.RP.guarded <> o.RP.expected then begin
    Format.eprintf
      "error: disarmed probe lost updates (unguarded %d, guarded %d, \
       expected %d): the mutex-guarded paths are broken@."
      o.RP.unguarded o.RP.guarded o.RP.expected;
    exit 1
  end;
  Format.printf "domain-race: disarmed: %d/%d increments, no loss@."
    o.RP.unguarded o.RP.expected;
  RP.Unsafe.arm ();
  let attempts = 20 in
  let rec go n =
    if n = 0 then begin
      RP.Unsafe.reset ();
      Format.eprintf
        "error: armed probe never lost an update in %d attempts — the \
         seeded race did not bite dynamically@."
        attempts;
      exit 1
    end
    else
      let o = RP.run ~domains:threads ~iters () in
      if o.RP.unguarded < o.RP.expected then o else go (n - 1)
  in
  let o = go attempts in
  RP.Unsafe.reset ();
  if o.RP.guarded <> o.RP.expected then begin
    Format.eprintf
      "error: armed probe corrupted the mutex-guarded control counter \
       (%d, expected %d)@."
      o.RP.guarded o.RP.expected;
    exit 1
  end;
  Format.printf
    "domain-race: armed: lost %d of %d increments (control counter \
     intact); the static R7 finding is a real race@."
    (o.RP.expected - o.RP.unguarded)
    o.RP.expected;
  0

(* --- CLI ----------------------------------------------------------- *)

let scale_conv =
  let parse s =
    Result.map
      (fun p -> (s, p))
      (Result.map_error (fun e -> `Msg e) (Sb7_core.Parameters.of_string s))
  in
  Arg.conv ~docv:"SCALE" (parse, fun ppf (name, _) ->
      Format.pp_print_string ppf name)

let threads_arg =
  Arg.(value & opt int 2 & info [ "t"; "threads" ] ~docv:"N"
         ~doc:"Worker domains per run (seq always runs with 1).")

let length_arg =
  Arg.(value & opt float 2. & info [ "l"; "length" ] ~docv:"SECONDS"
         ~doc:"Run length in seconds.")

let scale_arg =
  Arg.(value & opt scale_conv ("tiny", Sb7_core.Parameters.tiny)
       & info [ "scale" ] ~docv:"tiny|small|medium"
           ~doc:"Structure size preset.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Master random seed.")

let dir_arg =
  Arg.(value & opt string "_sanitize"
       & info [ "trace-out" ] ~docv:"DIR"
           ~doc:"Directory for saved traces (created on demand).")

let check_cmd =
  let doc =
    "Sanitized run of every registered strategy; any finding fails."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const check $ threads_arg $ length_arg $ scale_arg $ seed_arg $ dir_arg)

let seeded_cmd =
  let doc = "Plant a known bug and demand the sanitizer flags it." in
  let fixture_arg =
    Arg.(required & pos 0 (some fixture_conv) None
         & info [] ~docv:"FIXTURE"
             ~doc:"tl2-no-validation | tl2-unvalidated-resume | \
                   norec-skip-revalidation | medium-drop-lock")
  in
  Cmd.v (Cmd.info "seeded" ~doc)
    Term.(
      const seeded $ fixture_arg $ threads_arg $ length_arg $ scale_arg
      $ seed_arg $ dir_arg)

let footprint_cmd =
  let doc =
    "Replay a trace against the static footprint table \
     (lib/core/op_footprint.ml): every tvar access must fall inside its \
     operation's inferred may-read / may-write region set. With no \
     argument, runs and replays every registered runtime."
  in
  let trace_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"TRACE" ~doc:"Saved trace file to replay.")
  in
  let seeded_arg =
    Arg.(value & opt (some fp_fixture_conv) None
         & info [ "seeded" ] ~docv:"read-escape|write-escape"
             ~doc:"Plant an out-of-region access and demand the replay \
                   reports it.")
  in
  Cmd.v (Cmd.info "footprint" ~doc)
    Term.(
      const footprint $ trace_arg $ seeded_arg $ threads_arg $ length_arg
      $ scale_arg $ seed_arg $ dir_arg)

let domain_race_cmd =
  let doc =
    "R7 static/dynamic cross-check: strip the race-probe lint waiver and \
     demand the domain-escape finding reappears, then run the probe \
     disarmed (exact counts) and armed (lost updates required)."
  in
  let cmt_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "cmt-dir" ] ~docv:"DIR"
             ~doc:"Directory of .cmt files to lint for the static half \
                   (e.g. lib, run from the dune build root). Skipped when \
                   absent.")
  in
  let iters_arg =
    Arg.(value & opt int 200_000
         & info [ "iters" ] ~docv:"N"
             ~doc:"Increments per domain in each probe run.")
  in
  Cmd.v (Cmd.info "domain-race" ~doc)
    Term.(const domain_race $ cmt_dir_arg $ threads_arg $ iters_arg)

let cmd =
  let doc = "Opacity + lockset race sanitizer for the STMBench7 runtimes" in
  Cmd.group (Cmd.info "sb7-sanitize" ~doc)
    [ check_cmd; seeded_cmd; footprint_cmd; domain_race_cmd ]

let () = exit (Cmd.eval' cmd)
