(* STMBench7 command-line interface, mirroring the original's flags
   (paper Appendix A.1): -t threads, -l length, -w workload,
   -g granularity/strategy, --no-traversals, --no-sms,
   --ttc-histograms — plus the OCaml port's extras: --scale, --index,
   --seed, --reduced, --cm, --max-ops. *)

module B = Sb7_harness.Benchmark
module Workload = Sb7_harness.Workload

open Cmdliner

let conv_of_parser ~docv parse print =
  Arg.conv ~docv ((fun s -> Result.map_error (fun e -> `Msg e) (parse s)), print)

let workload_conv =
  conv_of_parser ~docv:"WORKLOAD" Workload.kind_of_string (fun ppf w ->
      Format.pp_print_string ppf (Workload.kind_to_string w))

let scale_conv =
  conv_of_parser ~docv:"SCALE"
    (fun s -> Result.map (fun p -> (s, p)) (Sb7_core.Parameters.of_string s))
    (fun ppf (name, _) -> Format.pp_print_string ppf name)

let index_conv =
  conv_of_parser ~docv:"INDEX" Sb7_core.Index_intf.kind_of_string (fun ppf k ->
      Format.pp_print_string ppf (Sb7_core.Index_intf.kind_to_string k))

let cm_conv =
  conv_of_parser ~docv:"CM" Sb7_stm.Contention.policy_of_string (fun ppf p ->
      Format.pp_print_string ppf (Sb7_stm.Contention.policy_to_string p))

let threads =
  Arg.(value & opt int 1 & info [ "t"; "threads" ] ~docv:"N"
         ~doc:"Number of concurrent threads.")

let length =
  Arg.(value & opt float 10. & info [ "l"; "length" ] ~docv:"SECONDS"
         ~doc:"Benchmark length in seconds.")

let workload =
  Arg.(value & opt workload_conv Workload.Read_dominated
       & info [ "w"; "workload" ] ~docv:"r|rw|w"
           ~doc:"Workload type: read-dominated, read-write or \
                 write-dominated.")

let strategy =
  (* The listing is generated from the runtime registry so the CLI
     never drifts from what [Driver.run] accepts. *)
  let doc =
    Printf.sprintf "Synchronization strategy: %s."
      (String.concat " | " Sb7_runtime.Registry.names)
  in
  Arg.(value & opt string "coarse"
       & info [ "g"; "strategy" ] ~docv:"STRATEGY" ~doc)

let no_traversals =
  Arg.(value & flag & info [ "no-traversals" ]
         ~doc:"Disable long traversals.")

let no_sms =
  Arg.(value & flag & info [ "no-sms" ]
         ~doc:"Disable structure modification operations.")

let histograms =
  Arg.(value & flag & info [ "ttc-histograms" ]
         ~doc:"Print TTC (latency) histograms.")

let reduced =
  Arg.(value & flag & info [ "reduced" ]
         ~doc:"Restrict to the paper's §5 reduced operation set (used \
               for Figure 6).")

let scale =
  Arg.(value & opt scale_conv ("medium", Sb7_core.Parameters.medium)
       & info [ "scale" ] ~docv:"tiny|small|medium"
           ~doc:"Structure size preset (the paper uses medium).")

let index_kind =
  Arg.(value & opt index_conv Sb7_core.Index_intf.Avl
       & info [ "index" ] ~docv:"avl|flat|btree"
           ~doc:"Index implementation (conflict granularity under STM).")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Master random seed (runs are deterministic per seed and \
               thread count).")

let max_ops =
  Arg.(value & opt (some int) None & info [ "max-ops" ] ~docv:"N"
         ~doc:"Stop each thread after N operations instead of after the \
               time limit.")

let contention_manager =
  Arg.(value & opt cm_conv Sb7_stm.Contention.Polka
       & info [ "cm" ] ~docv:"CM"
           ~doc:"Contention manager for the astm strategy: aggressive | \
                 timid | karma | polka.")

let mix_conv =
  conv_of_parser ~docv:"LT:ST:OP:SM" Workload.mix_of_string (fun ppf m ->
      Format.pp_print_string ppf (Workload.mix_to_string m))

let only_op =
  Arg.(value & opt (some string) None & info [ "op" ] ~docv:"CODE"
         ~doc:"Run only the named operation (e.g. T1, ST4, SM7) in \
               isolation, OO7-style, instead of the workload mix.")

let mix =
  Arg.(value & opt mix_conv Workload.default_mix
       & info [ "mix" ] ~docv:"LT:ST:OP:SM"
           ~doc:"Relative category weights (default 5:40:45:10, the \
                 paper's Table 2).")

let dispatch_conv =
  conv_of_parser ~docv:"uniform|conflict-aware"
    Sb7_harness.Dispatch.mode_of_string (fun ppf m ->
      Format.pp_print_string ppf (Sb7_harness.Dispatch.mode_to_string m))

let dispatch =
  Arg.(value & opt dispatch_conv Sb7_harness.Dispatch.Uniform
       & info [ "dispatch" ] ~docv:"uniform|conflict-aware"
           ~doc:"Operation-to-domain dispatch: every worker samples the \
                 full mix (uniform, the paper's default), or workers get \
                 disjoint operation groups from the static conflict \
                 matrix (conflict-aware, see docs/FOOTPRINT.md).")

let warmup =
  Arg.(value & opt float 0. & info [ "warmup" ] ~docv:"SECONDS"
         ~doc:"Discarded run-in before the measured window.")

let csv_out =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
         ~doc:"Also write the run's summary and per-operation results as \
               CSV to FILE and FILE.ops.")

let minor_heap =
  Arg.(value & opt (some int) None & info [ "minor-heap" ] ~docv:"WORDS"
         ~doc:"Resize each domain's minor heap to WORDS (Gc.set \
               minor_heap_size, applied inside every worker domain — \
               sizes do not propagate to spawned domains). The size in \
               effect is recorded in the results either way, so \
               GC-pressure columns can be interpreted after the fact.")

let sanitize =
  Arg.(value & flag & info [ "sanitize" ]
         ~doc:"Run under the opacity + lockset sanitizer: record event \
               traces during the measured window, check them, and print \
               the verdict (see docs/SANITIZER.md). Expect tracing \
               overhead; throughput numbers are not comparable to \
               unsanitized runs.")

let run threads length workload strategy no_traversals no_sms histograms
    reduced (scale_name, scale) index_kind seed max_ops cm mix only_op
    dispatch warmup csv_out minor_heap sanitize =
  Sb7_stm.Astm.set_policy cm;
  let config =
    {
      B.threads;
      duration_s = length;
      warmup_s = warmup;
      max_ops;
      workload;
      mix;
      long_traversals = not no_traversals;
      structure_mods = not no_sms;
      reduced_ops = reduced;
      only_op;
      dispatch;
      scale;
      scale_name;
      index_kind;
      seed;
      histograms;
      sanitize;
      minor_heap;
    }
  in
  match Sb7_harness.Driver.run ~runtime_name:strategy config with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    exit 2
  | Ok result ->
    Sb7_harness.Report.print Format.std_formatter result;
    (match csv_out with
    | None -> ()
    | Some path ->
      let write p f =
        let oc = open_out p in
        f oc [ result ];
        close_out oc
      in
      write path Sb7_harness.Csv.write_summary;
      write (path ^ ".ops") Sb7_harness.Csv.write_per_op;
      Format.eprintf "wrote %s and %s.ops@." path path);
    0

let cmd =
  let doc =
    "STMBench7: a benchmark for software transactional memory (OCaml \
     reproduction)"
  in
  let info = Cmd.info "stmbench7" ~doc in
  Cmd.v info
    Term.(
      const run $ threads $ length $ workload $ strategy $ no_traversals
      $ no_sms $ histograms $ reduced $ scale $ index_kind $ seed $ max_ops
      $ contention_manager $ mix $ only_op $ dispatch $ warmup $ csv_out
      $ minor_heap $ sanitize)

let () = exit (Cmd.eval' cmd)
