(** sb7-lint: static STM-discipline checker over dune-generated [.cmt]
    typed ASTs. See docs/LINT.md for the rule families and suppression
    syntax. Exit code 1 when any unsuppressed error remains. *)

open Cmdliner

let run paths json sarif strict_local allow_stale source_root rules timing =
  (match Sb7_analysis.Lint_config.unknown_rule_families rules with
  | [] -> ()
  | unknown ->
    Printf.eprintf "sb7-lint: unknown rule family %s (expected %s)\n"
      (String.concat ", " unknown)
      (String.concat ", " Sb7_analysis.Lint_config.known_rule_families);
    exit 2);
  (match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> ()
  | missing ->
    Printf.eprintf "sb7-lint: no such file or directory: %s\n"
      (String.concat ", " missing);
    exit 2);
  let config =
    let base = Sb7_analysis.Lint_config.default in
    let base = { base with Sb7_analysis.Lint_config.strict_local } in
    (* R4 verifies the generated footprint table's pure-read set, not
       the hand-written ~writes declarations: the generator decides
       which operations take the read-only fast path (Op_footprint
       feeds Op_profile.ro_hint), so the generator is what honesty
       checking must police. *)
    let base =
      let open Sb7_analysis.Lint_config in
      {
        base with
        r4 =
          { base.r4 with r4_ro_codes = Sb7_core.Op_footprint.pure_read_codes };
      }
    in
    Sb7_analysis.Lint_config.narrow base rules
  in
  let clock = if timing then Some Unix.gettimeofday else None in
  let result =
    Sb7_analysis.Lint_engine.run ~config ?clock ~source_root ~paths ()
  in
  if sarif then print_string (Sb7_analysis.Lint_engine.render_sarif result)
  else if json then print_string (Sb7_analysis.Lint_engine.render_json result)
  else print_string (Sb7_analysis.Lint_engine.render_text result);
  (* Under --strict-local a stale suppression is an error, not a
     warning: the audit mode demands every in-source waiver still earn
     its keep. --allow-stale restores the warning during refactors. *)
  let stale_fails =
    strict_local && (not allow_stale)
    && result.Sb7_analysis.Lint_engine.stale_suppressions <> []
  in
  if stale_fails && (sarif || json) then
    List.iter
      (fun (file, line, rule) ->
        Printf.eprintf
          "%s:%d: error: stale suppression for rule %S matches no finding\n"
          file line rule)
      result.Sb7_analysis.Lint_engine.stale_suppressions;
  if result.Sb7_analysis.Lint_engine.findings = [] && not stale_fails then 0
  else 1

let paths_arg =
  let doc =
    "Directories scanned recursively for .cmt files (or .cmt files \
     directly)."
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH" ~doc)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let sarif_arg =
  Arg.(value & flag
       & info [ "sarif" ]
           ~doc:"Emit a SARIF 2.1.0 report (GitHub code scanning). \
                 Takes precedence over $(b,--json).")

let strict_local_arg =
  let doc =
    "Also report provably transaction-local mutable state as notices, \
     and fail (exit 1) on stale suppression comments — a full-purity \
     audit where every waiver must still match a finding."
  in
  Arg.(value & flag & info [ "strict-local" ] ~doc)

let allow_stale_arg =
  let doc =
    "With $(b,--strict-local): downgrade stale suppressions back to \
     warnings (escape hatch for refactors that move findings around)."
  in
  Arg.(value & flag & info [ "allow-stale" ] ~doc)

let source_root_arg =
  let doc =
    "Directory against which source paths recorded in .cmt files are \
     resolved (for suppression comments)."
  in
  Arg.(value & opt string "." & info [ "source-root" ] ~docv:"DIR" ~doc)

let rules_arg =
  let doc =
    "Comma-separated subset of rule families to run (R1,R2,R3,R4,R5,R6,R7)."
  in
  Arg.(value & opt (list string) [] & info [ "rules" ] ~docv:"RULES" ~doc)

let timing_arg =
  let doc =
    "Print per-stage wall-clock times (cmt loading, each rule family, \
     the shared escape-graph build, suppression loading)."
  in
  Arg.(value & flag & info [ "timing" ] ~doc)

let cmd =
  let doc = "enforce STM discipline across the STMBench7 sync-free core" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Walks dune-generated typed ASTs and enforces: (R1) no mutable \
         state bypassing the Runtime functor in the core; (R2) no \
         irrevocable effects reachable from abortable operation bodies; \
         (R3) lock acquire/release pairing, ordering and no-wait \
         discipline in the lock-based runtimes; (R4) profile honesty — \
         an operation registered without a ~writes clause is dispatched \
         through the read-only fast path, so its code must not reach a \
         transactional write or index mutation; (R5) no unsafe Obj.* \
         primitives outside the sanctioned, DESIGN.md-documented sites; \
         (R6) no closure or transaction-local mutable value stored from \
         inside an atomic block into state that outlives it; (R7) no \
         unguarded cross-domain mutable state — every location reachable \
         from a Domain.spawn closure or a configured domain entry point \
         must be Atomic, tvar-managed, DLS-confined, lock-guarded or \
         pre-spawn-frozen.";
      `P
        "Suppress a finding with a comment on the same or preceding \
         line: (* sb7-lint: allow <rule> -- reason *).";
    ]
  in
  Cmd.v
    (Cmd.info "sb7_lint" ~version:Sb7_analysis.Lint_version.version ~doc ~man)
    Term.(
      const run $ paths_arg $ json_arg $ sarif_arg $ strict_local_arg
      $ allow_stale_arg $ source_root_arg $ rules_arg $ timing_arg)

let () = exit (Cmd.eval' cmd)
