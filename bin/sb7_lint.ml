(** sb7-lint: static STM-discipline checker over dune-generated [.cmt]
    typed ASTs. See docs/LINT.md for the rule families and suppression
    syntax. Exit code 1 when any unsuppressed error remains. *)

open Cmdliner

let known_rules = [ "R1"; "R2"; "R3"; "R4"; "R5" ]

let run paths json strict_local source_root rules =
  (match List.filter (fun r -> not (List.mem r known_rules)) rules with
  | [] -> ()
  | unknown ->
    Printf.eprintf "sb7-lint: unknown rule family %s (expected %s)\n"
      (String.concat ", " unknown)
      (String.concat ", " known_rules);
    exit 2);
  (match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> ()
  | missing ->
    Printf.eprintf "sb7-lint: no such file or directory: %s\n"
      (String.concat ", " missing);
    exit 2);
  let config =
    let base = Sb7_analysis.Lint_config.default in
    let base = { base with Sb7_analysis.Lint_config.strict_local } in
    match rules with
    | [] -> base
    | rules ->
      let open Sb7_analysis.Lint_config in
      {
        base with
        r1 =
          (if List.mem "R1" rules then base.r1
           else { base.r1 with r1_prefixes = []; r1_dls_prefixes = [] });
        r2 =
          (if List.mem "R2" rules then base.r2
           else { base.r2 with r2_seeds = [] });
        r3 = (if List.mem "R3" rules then base.r3 else []);
        r4 =
          (if List.mem "R4" rules then base.r4
           else { base.r4 with r4_registry_units = [] });
        r5 =
          (if List.mem "R5" rules then base.r5
           else { base.r5 with r5_prefixes = [] });
      }
  in
  let result =
    Sb7_analysis.Lint_engine.run ~config ~source_root ~paths ()
  in
  if json then print_string (Sb7_analysis.Lint_engine.render_json result)
  else print_string (Sb7_analysis.Lint_engine.render_text result);
  if result.Sb7_analysis.Lint_engine.findings = [] then 0 else 1

let paths_arg =
  let doc =
    "Directories scanned recursively for .cmt files (or .cmt files \
     directly)."
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH" ~doc)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let strict_local_arg =
  let doc =
    "Also report provably transaction-local mutable state as notices \
     (full-purity audit; does not affect the exit code)."
  in
  Arg.(value & flag & info [ "strict-local" ] ~doc)

let source_root_arg =
  let doc =
    "Directory against which source paths recorded in .cmt files are \
     resolved (for suppression comments)."
  in
  Arg.(value & opt string "." & info [ "source-root" ] ~docv:"DIR" ~doc)

let rules_arg =
  let doc =
    "Comma-separated subset of rule families to run (R1,R2,R3,R4,R5)."
  in
  Arg.(value & opt (list string) [] & info [ "rules" ] ~docv:"RULES" ~doc)

let cmd =
  let doc = "enforce STM discipline across the STMBench7 sync-free core" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Walks dune-generated typed ASTs and enforces: (R1) no mutable \
         state bypassing the Runtime functor in the core; (R2) no \
         irrevocable effects reachable from abortable operation bodies; \
         (R3) lock acquire/release pairing, ordering and no-wait \
         discipline in the lock-based runtimes; (R4) profile honesty — \
         an operation registered without a ~writes clause is dispatched \
         through the read-only fast path, so its code must not reach a \
         transactional write or index mutation; (R5) no unsafe Obj.* \
         primitives outside the sanctioned, DESIGN.md-documented sites.";
      `P
        "Suppress a finding with a comment on the same or preceding \
         line: (* sb7-lint: allow <rule> -- reason *).";
    ]
  in
  Cmd.v
    (Cmd.info "sb7_lint" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ paths_arg $ json_arg $ strict_local_arg $ source_root_arg
      $ rules_arg)

let () = exit (Cmd.eval' cmd)
